// Package platform assembles the machine models used throughout the
// reproduction: the Calao Snowball (ST-Ericsson A9500), the Intel Xeon
// X5550 reference server, the Tibidabo compute node (NVIDIA Tegra2),
// and the successor Arm generations from the related work (Exynos 5
// Mont-Blanc prototype nodes, a ThunderX2-class server node).
//
// A Platform bundles a core timing model, a cache hierarchy
// configuration, memory characteristics and a power envelope, and can
// instantiate fresh simulators (cache hierarchies, TLBs) for
// experiments. Platforms are defined as serializable Specs held in a
// process-wide registry (Register / Lookup / Names); users add their
// own machines from JSON spec files (LoadSpecFile). Calibration
// constants come from the parts' public specs; PLATFORMS.md documents
// how each registered spec was chosen.
package platform

import (
	"fmt"

	"montblanc/internal/cache"
	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/power"
	"montblanc/internal/topo"
	"montblanc/internal/units"
)

// ISA identifies the instruction set, which matters for workloads whose
// instruction counts differ across architectures (e.g. 64-bit bitboard
// chess on a 32-bit ARM needs roughly twice the instructions).
type ISA int

// Supported instruction sets.
const (
	ARM32 ISA = iota
	X8664
	ARM64
)

// String names the ISA.
func (i ISA) String() string {
	switch i {
	case ARM32:
		return "armv7"
	case X8664:
		return "x86_64"
	case ARM64:
		return "aarch64"
	default:
		return fmt.Sprintf("ISA(%d)", int(i))
	}
}

// Bits returns the ISA's native word width. Workload models that pay an
// emulation tax for 64-bit operations (bitboard chess) key on this
// rather than on a specific ISA, so 64-bit ARM platforms are costed
// like x86-64.
func (i ISA) Bits() int {
	if i == ARM32 {
		return 32
	}
	return 64
}

// ParseISA resolves an ISA name as used in spec files ("armv7",
// "x86_64", "aarch64").
func ParseISA(s string) (ISA, error) {
	for _, i := range []ISA{ARM32, X8664, ARM64} {
		if i.String() == s {
			return i, nil
		}
	}
	return 0, fmt.Errorf("platform: unknown ISA %q (want armv7, x86_64 or aarch64)", s)
}

// MarshalText encodes the ISA by name, so specs serialize readably.
func (i ISA) MarshalText() ([]byte, error) {
	switch i {
	case ARM32, X8664, ARM64:
		return []byte(i.String()), nil
	}
	return nil, fmt.Errorf("platform: cannot marshal %s", i)
}

// UnmarshalText decodes an ISA name.
func (i *ISA) UnmarshalText(b []byte) error {
	parsed, err := ParseISA(string(b))
	if err != nil {
		return err
	}
	*i = parsed
	return nil
}

// Accelerator is an on-chip GPU usable for general-purpose compute, the
// §VI.A perspective (Mali T604 on the Exynos 5, GPGPU on Tegra 3).
type Accelerator struct {
	Name        string  `json:"name"`
	PeakSPFlops float64 `json:"peak_sp_flops"` // flops/s, single precision
	PeakDPFlops float64 `json:"peak_dp_flops"` // flops/s, double precision (0 = unsupported)
}

// Platform is a complete single-node machine model.
type Platform struct {
	Name  string
	CPU   *cpu.Model
	Cores int
	ISA   ISA

	// Accel is the integrated GPU, when present.
	Accel *Accelerator

	RAMBytes int64

	// Power is the machine's state-resolved power profile. Its Compute
	// draw is the conservative envelope the paper accounts — full board
	// power for the Snowball (2.5 W), full TDP for the Xeon (95 W) —
	// and machines without a calibrated per-state section carry the
	// uniform profile, which reproduces the paper's constant model
	// exactly.
	Power power.Profile

	// MemBandwidth is the sustained stream bandwidth to DRAM in bytes/s
	// (per node, all cores).
	MemBandwidth float64

	// MemLatencyCycles is the DRAM access latency in core cycles.
	MemLatencyCycles int

	// Caches lists the cache levels, L1 first. The L1 entry is the one
	// whose page-colour count drives the §V.A.1 reproducibility story.
	Caches []cache.Config

	TLBEntries     int
	TLBMissPenalty int
}

// Validate checks the platform definition.
func (p *Platform) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("platform %s: cores = %d", p.Name, p.Cores)
	}
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	if len(p.Caches) == 0 {
		return fmt.Errorf("platform %s: no cache levels", p.Name)
	}
	for _, c := range p.Caches {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if p.MemBandwidth <= 0 || p.MemLatencyCycles <= 0 || p.RAMBytes <= 0 {
		return fmt.Errorf("platform %s: incomplete memory spec", p.Name)
	}
	return nil
}

// NewHierarchy builds a fresh cache hierarchy for one core of the
// platform, translating through mapper (nil for identity mapping).
func (p *Platform) NewHierarchy(mapper mem.Mapper) (*cache.Hierarchy, error) {
	var tlb *mem.TLB
	if mapper != nil {
		tlb = mem.NewTLB(p.TLBEntries, p.TLBMissPenalty, mapper)
	}
	return cache.NewHierarchy(p.Caches, p.MemLatencyCycles, tlb)
}

// L1 returns the first-level cache configuration.
func (p *Platform) L1() cache.Config { return p.Caches[0] }

// PageColors returns the number of physical page colours of the L1,
// the quantity that decides whether random page placement can hurt.
func (p *Platform) PageColors() int {
	l1 := p.L1()
	return mem.PageColors(l1.Size, l1.Associativity)
}

// PeakFlops returns the node CPU peak in flops/s at the given precision.
func (p *Platform) PeakFlops(doublePrecision bool) float64 {
	r := p.CPU.FlopsPerCycleSP
	if doublePrecision {
		r = p.CPU.FlopsPerCycleDP
	}
	return float64(p.Cores) * p.CPU.ClockHz * r
}

// PeakFlopsWithAccel returns the hybrid node peak including the
// integrated GPU, when present and capable of the precision.
func (p *Platform) PeakFlopsWithAccel(doublePrecision bool) float64 {
	total := p.PeakFlops(doublePrecision)
	if p.Accel != nil {
		if doublePrecision {
			total += p.Accel.PeakDPFlops
		} else {
			total += p.Accel.PeakSPFlops
		}
	}
	return total
}

// SustainedFlops returns the node throughput at the given precision and
// kernel efficiency (fraction of peak in (0,1]).
func (p *Platform) SustainedFlops(doublePrecision bool, efficiency float64) float64 {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = 1
	}
	return p.PeakFlops(doublePrecision) * efficiency
}

// IntThroughput returns the node integer-op throughput in ops/s.
func (p *Platform) IntThroughput() float64 {
	return float64(p.Cores) * p.CPU.ClockHz * p.CPU.IntIPC
}

// Topology returns the hwloc-style tree of Figure 2.
func (p *Platform) Topology() *topo.Object {
	m := topo.NewMachine(p.RAMBytes)
	s := topo.NewSocket(0)
	perCore := make([]cache.Config, 0, len(p.Caches))
	shared := make([]cache.Config, 0, len(p.Caches))
	for _, c := range p.Caches {
		if c.Shared {
			shared = append(shared, c)
		} else {
			perCore = append(perCore, c)
		}
	}
	// Shared caches wrap all cores; per-core caches nest around each
	// core, outermost level first.
	attach := s
	for i := len(shared) - 1; i >= 0; i-- {
		c := topo.NewCache(shared[i].Level, int64(shared[i].Size))
		attach.Add(c)
		attach = c
	}
	for core := 0; core < p.Cores; core++ {
		inner := topo.NewCore(core).Add(topo.NewPU(core))
		for i := 0; i < len(perCore); i++ {
			// perCore is L1-first; nest L1 closest to the core.
			c := topo.NewCache(perCore[i].Level, int64(perCore[i].Size))
			c.Add(inner)
			inner = c
		}
		attach.Add(inner)
	}
	m.Add(s)
	return m
}

// String summarizes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("%s: %d x %s @ %.2fGHz, %s RAM, %.1fW",
		p.Name, p.Cores, p.CPU.Name, p.CPU.ClockHz/1e9,
		units.Bytes(p.RAMBytes), p.Power.Compute)
}

// Snowball returns the Calao Snowball board model: dual-core A9500 at
// 1 GHz, 1 GB LP-DDR2 (796 MB visible), 2.5 W USB power envelope.
// The 32 KB 4-way L1 has two page colours — physically indexed, so an
// unlucky physical allocation makes an L1-sized array conflict with
// itself (§V.A.1). Built from the registered spec; see builtin.go.
func Snowball() *Platform { return MustLookup("Snowball") }

// XeonX5550 returns the reference server model: quad-core Nehalem at
// 2.66 GHz with hyperthreading disabled (as in the paper), 12 GB DDR3,
// 95 W TDP. Its 32 KB 8-way L1 has a single page colour, which is why
// x86 never showed the paper's page-allocation reproducibility problem.
func XeonX5550() *Platform { return MustLookup("XeonX5550") }

// Exynos5Dual returns the final Mont-Blanc prototype node the paper's
// §VI anticipates: Samsung Exynos 5 Dual (two Cortex-A15 at 1.7 GHz)
// with an integrated Mali-T604 GPU supporting double precision —
// "a peak performance of about a 100 GFLOPS for a power consumption of
// 5 Watts".
func Exynos5Dual() *Platform { return MustLookup("Exynos5Dual") }

// Tegra2Node returns one Tibidabo compute node: dual-core Tegra2
// (Cortex-A9 without NEON) at 1 GHz, 1 GB DDR2, with a PCIe 1 GbE NIC.
// Node power (~8.5 W including NIC, per the Tibidabo report) is kept for
// completeness; the paper does no large-scale power measurement.
func Tegra2Node() *Platform { return MustLookup("Tegra2") }
