package platform

import (
	"fmt"
	"sort"
)

// Resolver answers platform lookups against an overlay of extra specs
// on top of the global registry, without registering anything. It is
// the request-scoped counterpart of Register/Lookup: a service request
// carrying inline machine specs resolves them through a Resolver, so
// concurrent requests with clashing machine names never fight over the
// process-wide registry and nothing leaks past the request.
//
// An extra spec may shadow a registered name: within its Resolver it
// wins every lookup, which is exactly the "same name, tweaked machine"
// experiment the global registry forbids. The zero-value Resolver (or
// one built from no specs) is a pure view of the registry.
type Resolver struct {
	extra map[string]Spec
	order []string // extra names in insertion order
}

// NewResolver builds a resolver over the given extra specs. Every spec
// is validated and deep-copied (later caller mutations never show
// through); duplicate names within the batch are rejected just like
// registerBatch rejects them, since the second spec would silently
// shadow the first.
func NewResolver(extra []Spec) (*Resolver, error) {
	r := &Resolver{extra: make(map[string]Spec, len(extra))}
	for _, s := range extra {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.extra[s.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate inline spec %q", s.Name)
		}
		r.extra[s.Name] = s.clone()
		r.order = append(r.order, s.Name)
	}
	return r, nil
}

// LookupSpec returns the named spec — the resolver's extra spec when
// one shadows the name, the registered spec otherwise. The result is a
// deep copy either way.
func (r *Resolver) LookupSpec(name string) (Spec, bool) {
	if r != nil {
		if s, ok := r.extra[name]; ok {
			return s.clone(), true
		}
	}
	return LookupSpec(name)
}

// Lookup builds a fresh Platform for the named spec, extra specs
// shadowing registered ones.
func (r *Resolver) Lookup(name string) (*Platform, error) {
	s, ok := r.LookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (available: %v)", name, r.Names())
	}
	return s.Build()
}

// Names returns every resolvable name — the union of the registry and
// the extra specs — in sorted order, matching the contract of the
// package-level Names.
func (r *Resolver) Names() []string {
	names := Names()
	if r == nil || len(r.extra) == 0 {
		return names
	}
	seen := make(map[string]bool, len(names)+len(r.extra))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range r.order {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	sort.Strings(names)
	return names
}
