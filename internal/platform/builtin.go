package platform

import (
	"montblanc/internal/cache"
	"montblanc/internal/cpu"
	"montblanc/internal/units"
)

// The built-in machines, expressed as registered specs. The first four
// are the paper's platforms and must build byte-identically to the
// historical hard-coded constructors (asserted by registry tests); the
// last two are successor Arm generations calibrated from the related
// work. PLATFORMS.md documents every calibration source.
func init() {
	MustRegister(snowballSpec())
	MustRegister(xeonX5550Spec())
	MustRegister(exynos5DualSpec())
	MustRegister(tegra2NodeSpec())
	MustRegister(montBlancNodeSpec())
	MustRegister(thunderX2Spec())
}

// snowballSpec is the Calao Snowball board: dual-core A9500 at 1 GHz,
// 1 GB LP-DDR2 (796 MB visible), 2.5 W USB power envelope. The
// per-state watts follow the fine-grained board measurements of
// arXiv:1410.3440: a ~0.6 W idle floor, memory-bound phases drawing
// close to the envelope, network-bound phases around 1.5 W.
func snowballSpec() Spec {
	return Spec{
		Name:             "Snowball",
		CPU:              *cpu.A9500(),
		Cores:            2,
		ISA:              ARM32,
		RAMBytes:         796 * units.MiB,
		Watts:            2.5,
		Power:            &PowerSpec{IdleWatts: 0.6, MemoryWatts: 2.2, CommWatts: 1.5},
		MemBandwidth:     1.0e9, // LP-DDR2, single 32-bit channel
		MemLatencyCycles: 130,
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 32, Associativity: 4, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 512 * units.KiB, LineSize: 32, Associativity: 8, HitLatency: 24, Shared: true},
		},
		TLBEntries:     32,
		TLBMissPenalty: 30,
	}
}

// xeonX5550Spec is the reference server: quad-core Nehalem at 2.66 GHz,
// hyperthreading disabled as in the paper, 12 GB DDR3, 95 W TDP. The
// per-state watts follow Nehalem-era server measurements (see
// arXiv:1410.3440): idle roughly a third of TDP, memory-bound phases
// near 80 W, communication-bound phases around 55 W.
func xeonX5550Spec() Spec {
	return Spec{
		Name:             "XeonX5550",
		CPU:              *cpu.Nehalem(),
		Cores:            4,
		ISA:              X8664,
		RAMBytes:         12 * units.GiB,
		PowerName:        "Xeon",
		Watts:            95,
		Power:            &PowerSpec{IdleWatts: 30, MemoryWatts: 80, CommWatts: 55},
		MemBandwidth:     12e9, // triple-channel DDR3-1333, sustained
		MemLatencyCycles: 180,
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 64, Associativity: 8, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 256 * units.KiB, LineSize: 64, Associativity: 8, HitLatency: 10},
			{Name: "L3", Level: 3, Size: 8 * units.MiB, LineSize: 64, Associativity: 16, HitLatency: 38, Shared: true},
		},
		TLBEntries:     64,
		TLBMissPenalty: 25,
	}
}

// exynos5DualSpec is the §VI anticipated node: Samsung Exynos 5 Dual
// (two Cortex-A15 at 1.7 GHz) with an integrated Mali-T604 — "a peak
// performance of about a 100 GFLOPS for a power consumption of 5
// Watts" at the SoC level.
func exynos5DualSpec() Spec {
	return Spec{
		Name:  "Exynos5Dual",
		CPU:   *cpu.CortexA15(),
		Cores: 2,
		ISA:   ARM32,
		Accel: &Accelerator{
			Name:        "Mali-T604",
			PeakSPFlops: 68e9,
			PeakDPFlops: 21e9,
		},
		RAMBytes:         2 * units.GiB,
		PowerName:        "Exynos5",
		Watts:            5,
		Power:            &PowerSpec{IdleWatts: 1.0, MemoryWatts: 4.2, CommWatts: 2.8},
		MemBandwidth:     6.4e9, // dual-channel LPDDR3
		MemLatencyCycles: 180,
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 64, Associativity: 2, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 1 * units.MiB, LineSize: 64, Associativity: 16, HitLatency: 21, Shared: true},
		},
		TLBEntries:     32,
		TLBMissPenalty: 25,
	}
}

// tegra2NodeSpec is one Tibidabo compute node: dual-core Tegra2
// (Cortex-A9 without NEON) at 1 GHz, 1 GB DDR2, PCIe 1 GbE NIC. Node
// power ~8.5 W including the NIC, per the Tibidabo report.
func tegra2NodeSpec() Spec {
	return Spec{
		Name:             "Tegra2",
		CPU:              *cpu.Tegra2(),
		Cores:            2,
		ISA:              ARM32,
		RAMBytes:         1 * units.GiB,
		PowerName:        "Tegra2Node",
		Watts:            8.5,
		Power:            &PowerSpec{IdleWatts: 2.8, MemoryWatts: 7.2, CommWatts: 5.5},
		MemBandwidth:     0.9e9,
		MemLatencyCycles: 140,
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 32, Associativity: 4, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 1 * units.MiB, LineSize: 32, Associativity: 8, HitLatency: 28, Shared: true},
		},
		TLBEntries:     32,
		TLBMissPenalty: 30,
	}
}

// montBlancNodeSpec is the deployed Mont-Blanc first-phase prototype
// compute card (arXiv:1508.05075): the same Exynos 5 Dual SoC the paper
// anticipated, but as fielded — 4 GB LPDDR3 per card, sustained DRAM
// bandwidth as measured on the blades rather than the channel peak, and
// a node-level ~10 W envelope that includes DRAM, the 1 GbE NIC and the
// blade's share of infrastructure (the same conservative accounting the
// paper applies to the Snowball).
func montBlancNodeSpec() Spec {
	return Spec{
		Name:  "MontBlancNode",
		CPU:   *cpu.CortexA15(),
		Cores: 2,
		ISA:   ARM32,
		Accel: &Accelerator{
			Name:        "Mali-T604",
			PeakSPFlops: 68e9,
			PeakDPFlops: 21e9,
		},
		RAMBytes:         4 * units.GiB,
		Watts:            10,
		Power:            &PowerSpec{IdleWatts: 3.2, MemoryWatts: 8.6, CommWatts: 6.4},
		MemBandwidth:     5.6e9, // measured sustained, below the 12.8 GB/s channel peak
		MemLatencyCycles: 180,
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 64, Associativity: 2, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 1 * units.MiB, LineSize: 64, Associativity: 16, HitLatency: 21, Shared: true},
		},
		TLBEntries:     32,
		TLBMissPenalty: 25,
	}
}

// thunderX2Spec is a ThunderX2-class server node calibrated from the
// Dibona cluster study (arXiv:2007.04868): one 32-core CN99xx socket at
// 2.0 GHz, 128 GB of 8-channel DDR4-2666 (sustained STREAM share
// ~110 GB/s per socket), 175 W socket TDP — the Arm generation that
// finally plays in the Xeon's weight class. The per-state watts encode
// the study's headline power observation: idle and full load diverge
// by more than 3x (55 W idle against the 175 W envelope), with
// memory-bound phases near 150 W and communication around 95 W.
func thunderX2Spec() Spec {
	return Spec{
		Name:             "ThunderX2",
		CPU:              *cpu.ThunderX2(),
		Cores:            32,
		ISA:              ARM64,
		RAMBytes:         128 * units.GiB,
		Watts:            175,
		Power:            &PowerSpec{IdleWatts: 55, MemoryWatts: 150, CommWatts: 95},
		MemBandwidth:     110e9,
		MemLatencyCycles: 180, // ~90 ns load-to-use at 2.0 GHz
		Caches: []cache.Config{
			{Name: "L1d", Level: 1, Size: 32 * units.KiB, LineSize: 64, Associativity: 8, HitLatency: 4},
			{Name: "L2", Level: 2, Size: 256 * units.KiB, LineSize: 64, Associativity: 8, HitLatency: 9},
			{Name: "L3", Level: 3, Size: 32 * units.MiB, LineSize: 64, Associativity: 16, HitLatency: 34, Shared: true},
		},
		TLBEntries:     64,
		TLBMissPenalty: 25,
	}
}
