package platform

import (
	"math"
	"strings"
	"testing"

	"montblanc/internal/mem"
	"montblanc/internal/topo"
	"montblanc/internal/units"
)

func TestAllPlatformsValidate(t *testing.T) {
	for _, p := range []*Platform{Snowball(), XeonX5550(), Tegra2Node()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := Snowball()
	p.Cores = 0
	if err := p.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	p2 := Snowball()
	p2.Caches = nil
	if err := p2.Validate(); err == nil {
		t.Error("no caches accepted")
	}
	p3 := Snowball()
	p3.MemBandwidth = 0
	if err := p3.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

// Figure 2 shapes: the Xeon has private L1+L2 per core under a shared
// L3; the A9500 has private L1 under a shared L2.
func TestTopologiesMatchFigure2(t *testing.T) {
	xeon := XeonX5550().Topology()
	if err := xeon.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := xeon.Count(topo.Core); n != 4 {
		t.Errorf("Xeon cores = %d, want 4", n)
	}
	if got := len(xeon.FindCaches(3)); got != 1 {
		t.Errorf("Xeon L3 = %d, want 1", got)
	}
	if got := len(xeon.FindCaches(2)); got != 4 {
		t.Errorf("Xeon L2 = %d, want 4", got)
	}
	if got := len(xeon.FindCaches(1)); got != 4 {
		t.Errorf("Xeon L1 = %d, want 4", got)
	}

	snow := Snowball().Topology()
	if err := snow.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(snow.FindCaches(2)); got != 1 {
		t.Errorf("Snowball L2 = %d, want 1 (shared)", got)
	}
	if got := len(snow.FindCaches(1)); got != 2 {
		t.Errorf("Snowball L1 = %d, want 2", got)
	}
	render := snow.Render()
	for _, want := range []string{"Machine (796MiB)", "L2 (512KiB)", "L1 (32KiB)"} {
		if !strings.Contains(render, want) {
			t.Errorf("Snowball render missing %q", want)
		}
	}
}

// The §V.A.1 asymmetry: the Snowball L1 (32KB 4-way) has two page
// colours, the Xeon L1 (32KB 8-way) has one, so only the ARM platform
// can suffer allocation-dependent conflicts.
func TestPageColorAsymmetry(t *testing.T) {
	if c := Snowball().PageColors(); c != 2 {
		t.Errorf("Snowball colours = %d, want 2", c)
	}
	if c := XeonX5550().PageColors(); c != 1 {
		t.Errorf("Xeon colours = %d, want 1", c)
	}
	if c := Tegra2Node().PageColors(); c != 2 {
		t.Errorf("Tegra2 colours = %d, want 2", c)
	}
}

func TestPeakFlopsOrdering(t *testing.T) {
	snow, xeon := Snowball(), XeonX5550()
	// Xeon peak DP must be ~38x the Snowball's sustained LU rate class.
	ratioDP := xeon.PeakFlops(true) / snow.PeakFlops(true)
	if ratioDP < 20 || ratioDP > 50 {
		t.Errorf("peak DP ratio = %.1f, want 20-50 (Table II LINPACK is 38.7)", ratioDP)
	}
	// SP gap is smaller on the Snowball thanks to NEON.
	if snow.PeakFlops(false) <= snow.PeakFlops(true) {
		t.Error("SP peak should exceed DP peak on the Snowball")
	}
}

func TestSustainedFlopsClampsEfficiency(t *testing.T) {
	p := XeonX5550()
	if p.SustainedFlops(true, 0) != p.PeakFlops(true) {
		t.Error("efficiency 0 should clamp to 1")
	}
	if p.SustainedFlops(true, 0.5) != p.PeakFlops(true)*0.5 {
		t.Error("efficiency 0.5 wrong")
	}
}

func TestNewHierarchyWorks(t *testing.T) {
	p := Snowball()
	h, err := p.NewHierarchy(mem.NewContiguousMapper(0))
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 2 {
		t.Errorf("Snowball depth = %d, want 2", h.Depth())
	}
	// First access: TLB miss + L1 miss + L2 miss + DRAM.
	l1, l2 := p.Caches[0].HitLatency, p.Caches[1].HitLatency
	cyc := h.Access(0, false)
	want := p.TLBMissPenalty + l1 + l2 + p.MemLatencyCycles
	if cyc != want {
		t.Errorf("cold access = %d, want %d", cyc, want)
	}

	// nil mapper: identity, no TLB cost.
	h2, err := p.NewHierarchy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := h2.Access(0, false); cyc != l1+l2+p.MemLatencyCycles {
		t.Errorf("identity cold access = %d", cyc)
	}
}

func TestIntThroughputRatio(t *testing.T) {
	// CoreMark-class ratio (Table II row 2: 7.1x). Pure IPC x clock x
	// cores gives the right order; the app model refines it.
	r := XeonX5550().IntThroughput() / Snowball().IntThroughput()
	if r < 5 || r > 11 {
		t.Errorf("integer throughput ratio = %.1f, want 5-11", r)
	}
}

func TestPowerEnvelopes(t *testing.T) {
	if w := Snowball().Power.Compute; w != 2.5 {
		t.Errorf("Snowball power = %v, want 2.5", w)
	}
	if w := XeonX5550().Power.Compute; w != 95 {
		t.Errorf("Xeon power = %v, want 95", w)
	}
}

func TestRAMMatchesFigure2(t *testing.T) {
	if r := Snowball().RAMBytes; r != 796*units.MiB {
		t.Errorf("Snowball RAM = %d", r)
	}
	if r := XeonX5550().RAMBytes; r != 12*units.GiB {
		t.Errorf("Xeon RAM = %d", r)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := Snowball().String()
	for _, want := range []string{"Snowball", "A9500", "2.5W"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Sanity: the ISA labels are what build flags in the paper imply.
func TestISAs(t *testing.T) {
	if Snowball().ISA != ARM32 || Tegra2Node().ISA != ARM32 {
		t.Error("ARM platforms must be ARM32")
	}
	if XeonX5550().ISA != X8664 {
		t.Error("Xeon must be x86_64")
	}
	if ARM32.String() != "armv7" || X8664.String() != "x86_64" {
		t.Error("ISA names wrong")
	}
}

// The Tibidabo node is strictly weaker than the Snowball in SP (no
// NEON), matching the Tegra2 spec.
func TestTegra2WeakerThanSnowball(t *testing.T) {
	if Tegra2Node().PeakFlops(false) >= Snowball().PeakFlops(false) {
		t.Error("Tegra2 SP peak should be below Snowball's")
	}
}

func TestMemLatencySaneOrder(t *testing.T) {
	// DRAM latency must dominate L2 hit latency on all platforms.
	for _, p := range []*Platform{Snowball(), XeonX5550(), Tegra2Node()} {
		last := p.Caches[len(p.Caches)-1]
		if p.MemLatencyCycles <= last.HitLatency {
			t.Errorf("%s: DRAM (%d) not slower than last cache (%d)",
				p.Name, p.MemLatencyCycles, last.HitLatency)
		}
	}
	if math.Abs(XeonX5550().CPU.ClockHz-2.66e9) > 1e6 {
		t.Error("Xeon clock drifted from spec")
	}
}
