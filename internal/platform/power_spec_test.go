package platform

import (
	"encoding/json"
	"strings"
	"testing"

	"montblanc/internal/power"
)

// Every builtin's power section must round-trip through the Spec JSON
// wire form: the same profile comes back, bit for bit.
func TestPowerSectionJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, ok := LookupSpec(name)
		if !ok {
			t.Fatalf("builtin %s vanished", name)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if got, want := back.Profile(), s.Profile(); got != want {
			t.Errorf("%s: profile round trip = %+v, want %+v", name, got, want)
		}
		if (s.Power == nil) != (back.Power == nil) {
			t.Errorf("%s: power section presence changed across round trip", name)
		}
	}
}

// A typo inside the power section must fail loudly, exactly like a typo
// at the top level of a spec.
func TestPowerSectionRejectsUnknownFields(t *testing.T) {
	js := `{
		"name": "Typo", "cpu": {"name": "c", "clock_hz": 1e9, "flops_per_cycle_sp": 1,
		"flops_per_cycle_dp": 1, "int_ipc": 1},
		"cores": 1, "isa": "armv7", "ram_bytes": 1073741824, "watts": 5,
		"mem_bandwidth": 1e9, "mem_latency_cycles": 100,
		"caches": [{"name": "L1", "level": 1, "size": 32768, "line_size": 32,
		"associativity": 4, "hit_latency": 4}],
		"power": {"idle_watts": 1, "memory_watts": 4, "com_watts": 3}
	}`
	var s Spec
	err := json.Unmarshal([]byte(js), &s)
	if err == nil {
		t.Fatal("power section with unknown field decoded")
	}
	if !strings.Contains(err.Error(), "com_watts") {
		t.Errorf("error does not name the offending field: %v", err)
	}
}

// The compute draw and the legacy watts envelope are one quantity; a
// power section that disagrees with the envelope is rejected rather
// than silently picking one of the two.
func TestPowerSectionValidation(t *testing.T) {
	base := snowballSpec()

	conflicting := base.clone()
	conflicting.Power = &PowerSpec{IdleWatts: 0.5, ComputeWatts: 99, MemoryWatts: 2, CommWatts: 1}
	if err := conflicting.Validate(); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflicting compute_watts: err = %v", err)
	}

	inverted := base.clone()
	inverted.Power = &PowerSpec{IdleWatts: 3, MemoryWatts: 2.2, CommWatts: 1.5}
	if err := inverted.Validate(); err == nil {
		t.Error("idle above active states validated")
	}

	missing := base.clone()
	missing.Power = &PowerSpec{IdleWatts: 0.5}
	if err := missing.Validate(); err == nil {
		t.Error("power section with zero active states validated")
	}

	explicit := base.clone()
	explicit.Power = &PowerSpec{IdleWatts: 0.5, ComputeWatts: 2.5, MemoryWatts: 2, CommWatts: 1}
	if err := explicit.Validate(); err != nil {
		t.Errorf("compute_watts equal to the envelope rejected: %v", err)
	}
	if got := explicit.Profile().Compute; got != 2.5 {
		t.Errorf("explicit compute = %v, want 2.5", got)
	}
}

// A spec without a power section is the paper's constant model: the
// built platform carries the uniform profile of its envelope, and every
// energy figure reduces to envelope x time.
func TestSpecWithoutPowerSectionIsUniform(t *testing.T) {
	for _, name := range Names() {
		s, _ := LookupSpec(name)
		s.Power = nil
		p, err := s.Build()
		if err != nil {
			t.Fatalf("%s: build without power section: %v", name, err)
		}
		if !p.Power.IsUniform() {
			t.Errorf("%s: profile without power section not uniform: %+v", name, p.Power)
		}
		if p.Power != power.Uniform(s.powerName(), s.Watts) {
			t.Errorf("%s: profile = %+v, want Uniform(%q, %g)",
				name, p.Power, s.powerName(), s.Watts)
		}
	}
}

// Uniform-profile ≡ constant-model equivalence on every builtin: the
// state-resolved machinery charges exactly the paper's numbers when the
// profile is uniform, whatever the state mix.
func TestUniformProfileReproducesConstantModelOnBuiltins(t *testing.T) {
	const seconds = 17.25
	for _, name := range Names() {
		s, _ := LookupSpec(name)
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		// Whole-run accounting always charges the envelope, profiled or
		// not — sweep-energy's numbers cannot move.
		if got, want := p.Power.Energy(seconds), s.Watts*seconds; got != want {
			t.Errorf("%s: Energy = %v, want envelope charge %v", name, got, want)
		}
		if got, want := p.Power.EnergyPerOp(100), s.Watts/100; got != want {
			t.Errorf("%s: EnergyPerOp = %v, want %v", name, got, want)
		}
		uni := power.Uniform(s.powerName(), s.Watts)
		for _, st := range power.States() {
			if got, want := uni.EnergyIn(st, seconds), s.Watts*seconds; got != want {
				t.Errorf("%s: uniform EnergyIn(%s) = %v, want %v", name, st, got, want)
			}
		}
	}
}

// Every builtin's calibrated profile is internally consistent and keeps
// the compute draw on the documented envelope.
func TestBuiltinProfilesCalibrated(t *testing.T) {
	for _, name := range Names() {
		s, _ := LookupSpec(name)
		if s.Power == nil {
			t.Errorf("builtin %s has no calibrated power section", name)
			continue
		}
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Power.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Power.IsUniform() {
			t.Errorf("%s: calibrated profile is uniform", name)
		}
		if p.Power.Compute != s.Watts {
			t.Errorf("%s: compute %g W off the envelope %g W", name, p.Power.Compute, s.Watts)
		}
	}
	// The ThunderX2 study's headline: idle and load diverge by > 3x.
	tx2, _ := LookupSpec("ThunderX2")
	if prof := tx2.Profile(); prof.Compute/prof.Idle <= 3 {
		t.Errorf("ThunderX2 load/idle = %g, want > 3 per arXiv:2007.04868",
			prof.Compute/prof.Idle)
	}
}

// The registry hands out deep copies of the power section: mutating a
// looked-up spec's profile must not write through.
func TestPowerSectionDeepCopied(t *testing.T) {
	s, _ := LookupSpec("Snowball")
	if s.Power == nil {
		t.Fatal("Snowball has no power section")
	}
	s.Power.IdleWatts = 999
	again, _ := LookupSpec("Snowball")
	if again.Power.IdleWatts == 999 {
		t.Error("registry power section mutated through a looked-up copy")
	}
}
