package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"montblanc/internal/cache"
	"montblanc/internal/units"
)

// uniqueName returns a registry name unique across the whole process,
// including repeated in-process runs (`go test -count=N`): registration
// is global and permanent, so fixed test names would collide with their
// own earlier run.
var nameCounter atomic.Int64

func uniqueName(t *testing.T, prefix string) string {
	t.Helper()
	return fmt.Sprintf("%s-%s-%d", prefix, t.Name(), nameCounter.Add(1))
}

func TestNamesContainBuiltins(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{
		"Snowball", "XeonX5550", "Exynos5Dual", "Tegra2", "MontBlancNode", "ThunderX2",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() missing builtin %q: %v", want, names)
		}
	}
	if len(names) < 6 {
		t.Errorf("%d registered platforms, want >= 6", len(names))
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	err := Register(snowballSpec())
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("re-registering Snowball: err = %v, want duplicate error", err)
	}
}

func TestUnknownLookupError(t *testing.T) {
	_, err := Lookup("Cray-1")
	if err == nil || !strings.Contains(err.Error(), "Cray-1") {
		t.Errorf("err = %v, want unknown-platform error naming Cray-1", err)
	}
}

// Lookup must hand out independent values: experiments mutate platforms
// (the spill ablation grows the register file) and must never
// contaminate the registry.
func TestLookupReturnsFreshValue(t *testing.T) {
	a := MustLookup("Snowball")
	a.CPU.Regs = [3]int{64, 64, 64}
	a.Caches[0].Size = 64 * units.KiB
	b := MustLookup("Snowball")
	if b.CPU.Regs == a.CPU.Regs {
		t.Error("CPU model shared between lookups")
	}
	if b.Caches[0].Size != 32*units.KiB {
		t.Error("cache config shared between lookups")
	}
}

// LookupSpec hands out deep copies: the copy-a-builtin-and-tweak
// pattern must never write through the shared Accel pointer or Caches
// backing array into the registered machine.
func TestLookupSpecReturnsDeepCopy(t *testing.T) {
	s, ok := LookupSpec("Exynos5Dual")
	if !ok {
		t.Fatal("Exynos5Dual spec missing")
	}
	s.Accel.PeakSPFlops = 1e15
	s.Caches[0].Size = 64 * units.KiB
	fresh, _ := LookupSpec("Exynos5Dual")
	if fresh.Accel.PeakSPFlops == 1e15 {
		t.Error("Accel mutation wrote through into the registry")
	}
	if fresh.Caches[0].Size != 32*units.KiB {
		t.Error("cache mutation wrote through into the registry")
	}
}

// The four paper platforms, built through the registry, must equal the
// spec-built values field for field — the byte-identical-output
// guarantee for every existing experiment rests on this.
func TestBuiltinSpecsBuildHistoricalPlatforms(t *testing.T) {
	if p := Snowball(); p.Power.Compute != 2.5 || p.Power.Name != "Snowball" ||
		p.CPU.Name != "A9500" || p.Cores != 2 || p.RAMBytes != 796*units.MiB {
		t.Errorf("Snowball drifted: %+v", p)
	}
	if p := XeonX5550(); p.Power.Name != "Xeon" || p.Power.Compute != 95 ||
		p.CPU.Name != "Nehalem" || len(p.Caches) != 3 {
		t.Errorf("XeonX5550 drifted: %+v", p)
	}
	if p := Exynos5Dual(); p.Power.Name != "Exynos5" || p.Accel == nil ||
		p.CPU.ClockHz != 1.7e9 || !p.CPU.OutOfOrder {
		t.Errorf("Exynos5Dual drifted: %+v", p)
	}
	if p := Tegra2Node(); p.Power.Name != "Tegra2Node" || p.Power.Compute != 8.5 ||
		p.CPU.Name != "Tegra2" {
		t.Errorf("Tegra2Node drifted: %+v", p)
	}
}

// Every builtin spec must survive a JSON round-trip and build an
// identical platform — the property that makes file-defined machines
// first-class citizens.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		spec, ok := LookupSpec(name)
		if !ok {
			t.Fatalf("LookupSpec(%q) missing", name)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%s: spec round-trip drifted:\n  %+v\n  %+v", name, spec, back)
		}
		want, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		got, err := back.Build()
		if err != nil {
			t.Fatalf("%s: build after round-trip: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: built platform differs after JSON round-trip", name)
		}
	}
}

func TestSpecValidateRejections(t *testing.T) {
	base := snowballSpec()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero cores", func(s *Spec) { s.Cores = 0 }},
		{"no caches", func(s *Spec) { s.Caches = nil }},
		{"non-pow2 cache", func(s *Spec) { s.Caches[0].Size = 3000 }},
		{"zero watts", func(s *Spec) { s.Watts = 0 }},
		{"negative bandwidth", func(s *Spec) { s.MemBandwidth = -1 }},
		{"zero RAM", func(s *Spec) { s.RAMBytes = 0 }},
		{"bad ISA", func(s *Spec) { s.ISA = ISA(99) }},
		{"negative TLB", func(s *Spec) { s.TLBEntries = -1 }},
		{"zero clock", func(s *Spec) { s.CPU.ClockHz = 0 }},
	}
	for _, c := range cases {
		s := base
		s.Caches = append([]cache.Config(nil), base.Caches...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed spec", c.name)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build accepted malformed spec", c.name)
		}
		if err := Register(s); err == nil {
			t.Errorf("%s: Register accepted malformed spec", c.name)
		}
	}
}

func writeTempSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpecFileRegistersMachine(t *testing.T) {
	spec, _ := LookupSpec("Snowball")
	spec.Name = uniqueName(t, "TestBoard")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	names, err := LoadSpecFile(writeTempSpec(t, string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != spec.Name {
		t.Fatalf("loaded names = %v", names)
	}
	p, err := Lookup(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.Name != "A9500" || p.Power.Compute != 2.5 {
		t.Errorf("file-defined machine drifted: %+v", p)
	}
}

func TestLoadSpecFileArrayForm(t *testing.T) {
	a, _ := LookupSpec("Tegra2")
	b, _ := LookupSpec("XeonX5550")
	a.Name = uniqueName(t, "ArrayA")
	b.Name = uniqueName(t, "ArrayB")
	data, err := json.Marshal([]Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	names, err := LoadSpecFile(writeTempSpec(t, string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != a.Name || names[1] != b.Name {
		t.Fatalf("loaded names = %v", names)
	}
}

func TestLoadSpecFileRejections(t *testing.T) {
	valid, _ := LookupSpec("Snowball")
	valid.Name = uniqueName(t, "Atomic")
	validJSON, _ := json.Marshal(valid)
	invalid := valid
	invalid.Cores = 0
	invalidJSON, _ := json.Marshal(invalid)
	dupJSON, _ := json.Marshal(mustSpec(t, "Snowball"))

	cases := []struct {
		name, content, wantErr string
	}{
		{"malformed JSON", "{not json", "parsing"},
		{"unknown field", `{"name":"X","coresss":2}`, "parsing"},
		{"empty file", "", "parsing"},
		{"empty array", "[]", "no specs"},
		{"trailing garbage", string(validJSON) + "{}", "parsing"},
		{"invalid spec", string(invalidJSON), "cores"},
		{"duplicate of builtin", string(dupJSON), "duplicate"},
		{"missing isa", stripField(t, validJSON, "isa"), "isa"},
	}
	for _, c := range cases {
		if _, err := LoadSpecFile(writeTempSpec(t, c.content)); err == nil ||
			!strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	// Atomicity: a file mixing one new valid spec with one invalid spec
	// must register nothing.
	mixed, _ := json.Marshal([]Spec{valid, invalid})
	if _, err := LoadSpecFile(writeTempSpec(t, string(mixed))); err == nil {
		t.Fatal("mixed file accepted")
	}
	if _, ok := LookupSpec(valid.Name); ok {
		t.Error("half-applied spec file: valid spec registered despite sibling failure")
	}
	if _, err := LoadSpecFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// stripField removes one top-level key from a marshaled spec, modeling
// a user file that omitted it.
func stripField(t *testing.T, specJSON []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(specJSON, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, field)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, ok := LookupSpec(name)
	if !ok {
		t.Fatalf("builtin %q missing", name)
	}
	return s
}

func TestParseISAAndBits(t *testing.T) {
	for _, c := range []struct {
		s    string
		want ISA
		bits int
	}{
		{"armv7", ARM32, 32},
		{"x86_64", X8664, 64},
		{"aarch64", ARM64, 64},
	} {
		got, err := ParseISA(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseISA(%q) = %v, %v", c.s, got, err)
		}
		if got.Bits() != c.bits {
			t.Errorf("%s.Bits() = %d, want %d", c.s, got.Bits(), c.bits)
		}
	}
	if _, err := ParseISA("sparc"); err == nil {
		t.Error("ParseISA accepted sparc")
	}
	if _, err := ISA(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted out-of-range ISA")
	}
}

// The two related-work machines: a ThunderX2 server node must finally
// out-muscle the Xeon in DP peak, and the deployed Mont-Blanc card must
// keep the Exynos efficiency story at node-level power accounting.
func TestNewGenerationPlatforms(t *testing.T) {
	tx2 := MustLookup("ThunderX2")
	if err := tx2.Validate(); err != nil {
		t.Fatal(err)
	}
	if tx2.ISA != ARM64 {
		t.Errorf("ThunderX2 ISA = %v, want aarch64", tx2.ISA)
	}
	xeon := XeonX5550()
	if tx2.PeakFlops(true) <= xeon.PeakFlops(true) {
		t.Errorf("ThunderX2 DP peak %.0f GF not above Xeon %.0f GF",
			tx2.PeakFlops(true)/1e9, xeon.PeakFlops(true)/1e9)
	}
	mb := MustLookup("MontBlancNode")
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if mb.Accel == nil || mb.Accel.PeakDPFlops <= 0 {
		t.Error("MontBlancNode must carry the DP-capable Mali-T604")
	}
	if mb.RAMBytes != 4*units.GiB {
		t.Errorf("MontBlancNode RAM = %d, want 4 GiB per card", mb.RAMBytes)
	}
	if mb.Power.Compute <= Exynos5Dual().Power.Compute {
		t.Error("node-level envelope must exceed the bare SoC's 5 W")
	}
}
