package platform

import (
	"testing"

	"montblanc/internal/power"
)

func TestExynos5DualValidates(t *testing.T) {
	p := Exynos5Dual()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Accel == nil {
		t.Fatal("Exynos 5 must carry the Mali T604")
	}
}

// §VI.A: "a peak performance of about a 100 GFLOPS for a power
// consumption of 5 Watts".
func TestExynos5HybridPeak(t *testing.T) {
	p := Exynos5Dual()
	peak := p.PeakFlopsWithAccel(false)
	if peak < 75e9 || peak > 110e9 {
		t.Errorf("hybrid SP peak = %.0f GFLOPS, want ~100", peak/1e9)
	}
	if g := power.GFLOPSPerWatt(peak, p.Power.Compute); g < 15 || g > 22 {
		t.Errorf("SoC efficiency = %.1f GF/W, want ~20", g)
	}
}

// "For codes that only support double precision, the final Mont-Blanc
// prototype will use Exynos 5" — unlike the Tegra boards, the Mali T604
// does double precision.
func TestExynos5DoublePrecisionCapable(t *testing.T) {
	p := Exynos5Dual()
	if p.Accel.PeakDPFlops <= 0 {
		t.Error("T604 must support DP")
	}
	dp := p.PeakFlopsWithAccel(true)
	if dp <= p.PeakFlops(true) {
		t.Error("accelerator DP not accounted")
	}
	// Tegra2 nodes gain nothing from PeakFlopsWithAccel (no GPU model).
	tegra := Tegra2Node()
	if tegra.PeakFlopsWithAccel(true) != tegra.PeakFlops(true) {
		t.Error("GPU-less node should be unchanged")
	}
}

// The generational leap the Mont-Blanc bet rests on: the Exynos 5 node
// is an order of magnitude more efficient than a Tibidabo node.
func TestExynos5BeatsTegra2Efficiency(t *testing.T) {
	tegra := Tegra2Node()
	exynos := Exynos5Dual()
	tegraEff := power.GFLOPSPerWatt(tegra.PeakFlops(false), tegra.Power.Compute)
	exynosEff := power.GFLOPSPerWatt(exynos.PeakFlopsWithAccel(false), exynos.Power.Compute)
	if exynosEff < 10*tegraEff {
		t.Errorf("Exynos5 %.2f GF/W not >=10x Tegra2 %.2f GF/W", exynosEff, tegraEff)
	}
}
