package platform

import (
	"bytes"
	"encoding/json"
	"fmt"

	"montblanc/internal/cache"
	"montblanc/internal/cpu"
	"montblanc/internal/power"
)

// Spec is the serializable description of a Platform: everything a
// Platform carries, as plain data. A Spec round-trips through JSON, so
// machines can be defined in files (see LoadSpecFile) as well as in
// code, and the built-in platforms are themselves registered Specs
// (builtin.go). Build constructs a fresh *Platform; every build returns
// an independent value, so callers may mutate the result freely.
type Spec struct {
	Name  string    `json:"name"`
	CPU   cpu.Model `json:"cpu"`
	Cores int       `json:"cores"`
	ISA   ISA       `json:"isa"`

	// Accel is the integrated GPU, when present.
	Accel *Accelerator `json:"accel,omitempty"`

	RAMBytes int64 `json:"ram_bytes"`

	// PowerName overrides the power model's name when it historically
	// differs from the platform name (e.g. the Xeon's envelope is named
	// "Xeon"); empty means the platform name.
	PowerName string  `json:"power_name,omitempty"`
	Watts     float64 `json:"watts"`

	MemBandwidth     float64 `json:"mem_bandwidth"`
	MemLatencyCycles int     `json:"mem_latency_cycles"`

	Caches []cache.Config `json:"caches"`

	TLBEntries     int `json:"tlb_entries"`
	TLBMissPenalty int `json:"tlb_miss_penalty"`
}

// UnmarshalJSON decodes a spec, rejecting unknown fields and requiring
// an explicit "isa": the ISA zero value is armv7, and a 64-bit machine
// spec that omitted the field would otherwise silently register with
// the 32-bit emulation tax priced in — exactly the quiet mis-costing
// the fail-loudly parsing is meant to prevent.
func (s *Spec) UnmarshalJSON(b []byte) error {
	type bare Spec // no methods: avoids recursing into this unmarshaler
	aux := struct {
		*bare
		ISA *ISA `json:"isa"`
	}{bare: (*bare)(s)}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return err
	}
	if aux.ISA == nil {
		return fmt.Errorf("spec %q: missing \"isa\" field (armv7, x86_64 or aarch64)", s.Name)
	}
	s.ISA = *aux.ISA
	return nil
}

// clone returns a deep copy: the Caches slice and Accel pointer are
// duplicated, so neither side can mutate the other. The registry
// stores and hands out clones only — a caller tweaking a looked-up
// spec (the copy-builtin-and-edit pattern) must never write through
// into the registered machines.
func (s Spec) clone() Spec {
	s.Caches = append([]cache.Config(nil), s.Caches...)
	if s.Accel != nil {
		a := *s.Accel
		s.Accel = &a
	}
	return s
}

// powerName returns the name the built power.Model carries.
func (s Spec) powerName() string {
	if s.PowerName != "" {
		return s.PowerName
	}
	return s.Name
}

// Build constructs a fresh Platform from the spec and validates it.
// Nothing is shared between builds: the CPU model, accelerator and
// cache slice are all copies, so experiments that mutate a platform
// (ablations, what-if studies) never contaminate the registry.
func (s Spec) Build() (*Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cpuCopy := s.CPU
	p := &Platform{
		Name:             s.Name,
		CPU:              &cpuCopy,
		Cores:            s.Cores,
		ISA:              s.ISA,
		RAMBytes:         s.RAMBytes,
		Power:            power.Model{Name: s.powerName(), Watts: s.Watts},
		MemBandwidth:     s.MemBandwidth,
		MemLatencyCycles: s.MemLatencyCycles,
		Caches:           append([]cache.Config(nil), s.Caches...),
		TLBEntries:       s.TLBEntries,
		TLBMissPenalty:   s.TLBMissPenalty,
	}
	if s.Accel != nil {
		a := *s.Accel
		p.Accel = &a
	}
	return p, nil
}

// Validate checks the spec without building it: the platform-level
// invariants plus the spec-only ones (a usable name, a positive power
// envelope, a known ISA).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("platform: spec with empty name")
	}
	if _, err := ParseISA(s.ISA.String()); err != nil {
		return fmt.Errorf("platform: spec %s: %w", s.Name, err)
	}
	if s.Watts <= 0 {
		return fmt.Errorf("platform: spec %s: power envelope %g W", s.Name, s.Watts)
	}
	if s.TLBEntries < 0 || s.TLBMissPenalty < 0 {
		return fmt.Errorf("platform: spec %s: negative TLB parameters", s.Name)
	}
	cpuCopy := s.CPU
	probe := Platform{
		Name:             s.Name,
		CPU:              &cpuCopy,
		Cores:            s.Cores,
		ISA:              s.ISA,
		RAMBytes:         s.RAMBytes,
		MemBandwidth:     s.MemBandwidth,
		MemLatencyCycles: s.MemLatencyCycles,
		Caches:           s.Caches,
	}
	return probe.Validate()
}
