package platform

import (
	"bytes"
	"encoding/json"
	"fmt"

	"montblanc/internal/cache"
	"montblanc/internal/cpu"
	"montblanc/internal/power"
)

// Spec is the serializable description of a Platform: everything a
// Platform carries, as plain data. A Spec round-trips through JSON, so
// machines can be defined in files (see LoadSpecFile) as well as in
// code, and the built-in platforms are themselves registered Specs
// (builtin.go). Build constructs a fresh *Platform; every build returns
// an independent value, so callers may mutate the result freely.
type Spec struct {
	Name  string    `json:"name"`
	CPU   cpu.Model `json:"cpu"`
	Cores int       `json:"cores"`
	ISA   ISA       `json:"isa"`

	// Accel is the integrated GPU, when present.
	Accel *Accelerator `json:"accel,omitempty"`

	RAMBytes int64 `json:"ram_bytes"`

	// PowerName overrides the power profile's name when it historically
	// differs from the platform name (e.g. the Xeon's envelope is named
	// "Xeon"); empty means the platform name.
	PowerName string `json:"power_name,omitempty"`
	// Watts is the constant envelope the paper accounts (§III.C): full
	// board power for the Snowball, full TDP for the Xeon. It doubles as
	// the profile's compute (full-load) draw.
	Watts float64 `json:"watts"`

	// Power is the optional state-resolved power section. Absent, the
	// machine gets the paper's uniform constant model: every state
	// charged the Watts envelope.
	Power *PowerSpec `json:"power,omitempty"`

	MemBandwidth     float64 `json:"mem_bandwidth"`
	MemLatencyCycles int     `json:"mem_latency_cycles"`

	Caches []cache.Config `json:"caches"`

	TLBEntries     int `json:"tlb_entries"`
	TLBMissPenalty int `json:"tlb_miss_penalty"`
}

// UnmarshalJSON decodes a spec, rejecting unknown fields and requiring
// an explicit "isa": the ISA zero value is armv7, and a 64-bit machine
// spec that omitted the field would otherwise silently register with
// the 32-bit emulation tax priced in — exactly the quiet mis-costing
// the fail-loudly parsing is meant to prevent.
func (s *Spec) UnmarshalJSON(b []byte) error {
	type bare Spec // no methods: avoids recursing into this unmarshaler
	aux := struct {
		*bare
		ISA *ISA `json:"isa"`
	}{bare: (*bare)(s)}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return err
	}
	if aux.ISA == nil {
		return fmt.Errorf("spec %q: missing \"isa\" field (armv7, x86_64 or aarch64)", s.Name)
	}
	s.ISA = *aux.ISA
	return nil
}

// PowerSpec is the serializable state-resolved power section of a
// Spec: the watts the machine draws while idle, in memory-bound phases
// and while communicating. The compute (full-load) draw defaults to the
// spec's Watts envelope; setting it to anything else is rejected so the
// two fields can never silently disagree. Calibration sources for the
// built-in machines are documented in PLATFORMS.md.
type PowerSpec struct {
	IdleWatts    float64 `json:"idle_watts"`
	ComputeWatts float64 `json:"compute_watts,omitempty"`
	MemoryWatts  float64 `json:"memory_watts"`
	CommWatts    float64 `json:"comm_watts"`
}

// clone returns a deep copy: the Caches slice and the Accel and Power
// pointers are duplicated, so neither side can mutate the other. The
// registry stores and hands out clones only — a caller tweaking a
// looked-up spec (the copy-builtin-and-edit pattern) must never write
// through into the registered machines.
func (s Spec) clone() Spec {
	s.Caches = append([]cache.Config(nil), s.Caches...)
	if s.Accel != nil {
		a := *s.Accel
		s.Accel = &a
	}
	if s.Power != nil {
		p := *s.Power
		s.Power = &p
	}
	return s
}

// powerName returns the name the built power.Profile carries.
func (s Spec) powerName() string {
	if s.PowerName != "" {
		return s.PowerName
	}
	return s.Name
}

// Profile resolves the spec's power model: the uniform constant
// envelope when no power section is given, the state-resolved profile
// otherwise (compute defaulting to the envelope).
func (s Spec) Profile() power.Profile {
	if s.Power == nil {
		return power.Uniform(s.powerName(), s.Watts)
	}
	cw := s.Power.ComputeWatts
	if cw == 0 {
		cw = s.Watts
	}
	return power.Profile{
		Name:    s.powerName(),
		Idle:    s.Power.IdleWatts,
		Compute: cw,
		Memory:  s.Power.MemoryWatts,
		Comm:    s.Power.CommWatts,
	}
}

// Build constructs a fresh Platform from the spec and validates it.
// Nothing is shared between builds: the CPU model, accelerator and
// cache slice are all copies, so experiments that mutate a platform
// (ablations, what-if studies) never contaminate the registry.
func (s Spec) Build() (*Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cpuCopy := s.CPU
	p := &Platform{
		Name:             s.Name,
		CPU:              &cpuCopy,
		Cores:            s.Cores,
		ISA:              s.ISA,
		RAMBytes:         s.RAMBytes,
		Power:            s.Profile(),
		MemBandwidth:     s.MemBandwidth,
		MemLatencyCycles: s.MemLatencyCycles,
		Caches:           append([]cache.Config(nil), s.Caches...),
		TLBEntries:       s.TLBEntries,
		TLBMissPenalty:   s.TLBMissPenalty,
	}
	if s.Accel != nil {
		a := *s.Accel
		p.Accel = &a
	}
	return p, nil
}

// Validate checks the spec without building it: the platform-level
// invariants plus the spec-only ones (a usable name, a positive power
// envelope, a known ISA).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("platform: spec with empty name")
	}
	if _, err := ParseISA(s.ISA.String()); err != nil {
		return fmt.Errorf("platform: spec %s: %w", s.Name, err)
	}
	if s.Watts <= 0 {
		return fmt.Errorf("platform: spec %s: power envelope %g W", s.Name, s.Watts)
	}
	if s.Power != nil {
		if cw := s.Power.ComputeWatts; cw != 0 && cw != s.Watts {
			return fmt.Errorf("platform: spec %s: power section compute_watts %g conflicts with watts envelope %g",
				s.Name, cw, s.Watts)
		}
		if err := s.Profile().Validate(); err != nil {
			return fmt.Errorf("platform: spec %s: %w", s.Name, err)
		}
	}
	if s.TLBEntries < 0 || s.TLBMissPenalty < 0 {
		return fmt.Errorf("platform: spec %s: negative TLB parameters", s.Name)
	}
	cpuCopy := s.CPU
	probe := Platform{
		Name:             s.Name,
		CPU:              &cpuCopy,
		Cores:            s.Cores,
		ISA:              s.ISA,
		RAMBytes:         s.RAMBytes,
		MemBandwidth:     s.MemBandwidth,
		MemLatencyCycles: s.MemLatencyCycles,
		Caches:           s.Caches,
	}
	return probe.Validate()
}
