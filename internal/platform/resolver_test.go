package platform

import (
	"testing"
)

// resolverSpec returns a valid spec derived from a builtin, renamed and
// with a recognizably different envelope.
func resolverSpec(t *testing.T, name string, watts float64) Spec {
	t.Helper()
	s, ok := LookupSpec("Snowball")
	if !ok {
		t.Fatal("builtin Snowball missing")
	}
	s.Name = name
	s.PowerName = ""
	s.Power = nil
	s.Watts = watts
	return s
}

func TestResolverViewOfRegistry(t *testing.T) {
	r, err := NewResolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Names()), len(Names()); got != want {
		t.Fatalf("empty resolver sees %d names, registry has %d", got, want)
	}
	p, err := r.Lookup("Snowball")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Snowball" {
		t.Errorf("Lookup built %q", p.Name)
	}
	// The zero value behaves like the empty resolver.
	var zero *Resolver
	if _, ok := zero.LookupSpec("Snowball"); !ok {
		t.Error("nil resolver cannot see the registry")
	}
}

func TestResolverExtraDoesNotTouchRegistry(t *testing.T) {
	before := len(Names())
	extra := resolverSpec(t, "ResolverOnly", 7)
	r, err := NewResolver([]Spec{extra})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LookupSpec("ResolverOnly"); !ok {
		t.Fatal("extra spec not resolvable")
	}
	if _, ok := LookupSpec("ResolverOnly"); ok {
		t.Fatal("inline spec leaked into the global registry")
	}
	if len(Names()) != before {
		t.Fatalf("registry grew from %d to %d names", before, len(Names()))
	}
	// The union view contains both worlds.
	found := false
	for _, n := range r.Names() {
		if n == "ResolverOnly" {
			found = true
		}
	}
	if !found {
		t.Error("Names() missing the extra spec")
	}
	if got, want := len(r.Names()), before+1; got != want {
		t.Errorf("union has %d names, want %d", got, want)
	}
}

func TestResolverShadowsRegisteredName(t *testing.T) {
	shadow := resolverSpec(t, "Snowball", 123)
	r, err := NewResolver([]Spec{shadow})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r.LookupSpec("Snowball")
	if !ok || s.Watts != 123 {
		t.Fatalf("shadowing spec not returned: ok=%v watts=%g", ok, s.Watts)
	}
	// The registry still holds the builtin.
	orig, _ := LookupSpec("Snowball")
	if orig.Watts == 123 {
		t.Fatal("shadow wrote through into the registry")
	}
	// Shadowing does not duplicate the name in the union.
	count := 0
	for _, n := range r.Names() {
		if n == "Snowball" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Snowball appears %d times in Names()", count)
	}
}

func TestResolverRejectsInvalidAndDuplicate(t *testing.T) {
	bad := resolverSpec(t, "Bad", -1) // non-positive envelope
	if _, err := NewResolver([]Spec{bad}); err == nil {
		t.Error("invalid spec accepted")
	}
	a := resolverSpec(t, "Twin", 5)
	b := resolverSpec(t, "Twin", 6)
	if _, err := NewResolver([]Spec{a, b}); err == nil {
		t.Error("duplicate inline names accepted")
	}
}

func TestResolverUnknownName(t *testing.T) {
	r, _ := NewResolver(nil)
	if _, err := r.Lookup("NoSuchMachine"); err == nil {
		t.Error("unknown name resolved")
	}
}

func TestResolverInsulatedFromCallerMutation(t *testing.T) {
	extra := resolverSpec(t, "Mutable", 9)
	r, err := NewResolver([]Spec{extra})
	if err != nil {
		t.Fatal(err)
	}
	extra.Watts = 999
	if len(extra.Caches) > 0 {
		extra.Caches[0].Name = "hacked"
	}
	s, _ := r.LookupSpec("Mutable")
	if s.Watts != 9 {
		t.Errorf("resolver saw caller mutation: watts %g", s.Watts)
	}
	if len(s.Caches) > 0 && s.Caches[0].Name == "hacked" {
		t.Error("resolver shares cache slice with caller")
	}
}
