module montblanc

go 1.24
