// Package montblanc reproduces "Performance Analysis of HPC Applications
// on Low-Power Embedded Platforms" (Stanisic et al., DATE 2013): the
// Mont-Blanc project's characterization of ARM-based platforms against
// x86 servers, from single-node energy ratios through cluster-scale
// congestion pathologies to auto-tuned convolution kernels.
//
// Experiments execute on a deterministic worker pool
// (internal/runner): each renders into a private buffer and results
// are emitted in ID order, so `montblanc -parallel N all` produces the
// same bytes for any N. The driver also accepts several experiment IDs
// or glob patterns per invocation (`montblanc 'fig3*' table2`) and a
// -json mode that emits structured results (id, title, seconds,
// output, error) for downstream tooling. See internal/runner/RUNNER.md
// for the architecture.
//
// Machines are data: internal/platform holds a registry of
// serializable specs (the paper's four platforms plus successor Arm
// generations calibrated from the related work), listed by `montblanc
// platforms` and extensible at runtime from JSON files via `montblanc
// -platform-file`. The sweep* experiment family runs the Table II
// workload matrix and energy-to-solution comparison across every
// registered platform, dispatching the N x M cells as weighted tasks
// on the same runner; -platform restricts the sweep set. PLATFORMS.md
// documents every spec's calibration sources.
//
// Energy is state-resolved: internal/power models each machine as a
// Profile of per-state watts (idle / compute / memory / communication),
// with the paper's constant §III.C envelope as the uniform special
// case — whole-run accounting still charges the full envelope, so the
// historical Table II energy ratios are unchanged. A spec's optional
// "power" JSON section ({"idle_watts", "memory_watts", "comm_watts",
// optional "compute_watts" defaulting to "watts"}) carries the
// calibrated draw; internal/trace integrates a profile over per-rank
// state intervals (EnergyByState), turning Extrae-style traces into
// power traces, and the energy-phases experiment runs a phased
// mini-app on every registered platform to split joules by execution
// state. A uniform profile reproduces the constant model exactly.
//
// The simulator core (internal/simmpi) is a deterministic discrete-
// event engine: an indexed min-heap commits operations in global
// (virtual time, rank) order at O(log ranks) per event with an
// allocation-free hot path, so the scale-ranks experiment and the
// BenchmarkSimMPI* family can replay the Mont-Blanc follow-on regimes
// (hundreds of ranks) in milliseconds. internal/simmpi/SIMMPI.md
// documents the scheduler design and its determinism invariants; the
// golden files under internal/experiments/testdata pin the quick-suite
// bytes to the seed scheduler's output.
//
// The memory side (internal/cache behind internal/mem) mirrors that
// design: strided sweeps run on a batched engine (Hierarchy.AccessRun —
// translation once per page, set machinery once per line, steady
// passes memoized once the replacement state provably reaches a fixed
// point) with the element-at-a-time path retained as the bit-exact
// reference, pinned by equivalence property suites and AllocsPerRun
// guards. The scale-membench experiment and the BenchmarkMembench*
// family cover the related-work working sets (hundreds of MB) the
// scalar simulator could not afford; `montblanc -cpuprofile` /
// `-memprofile` wrap any run in runtime/pprof collectors.
// internal/cache/CACHE.md documents the engine and when memoization is
// legal.
//
// Experiments are also served: `montblanc serve` (internal/service)
// exposes the whole registry over HTTP/JSON with a content-addressed
// result cache in front of the runner pool. The determinism suite
// proves every experiment is a pure function of its Options plus the
// resolved platform specs, so a Result is stored under the SHA-256 of
// that canonical request (experiments.CacheKey) and replayed verbatim
// — byte-identical — for every later identical request; singleflight
// deduplication makes N concurrent identical requests cost one
// simulation. Requests may carry inline machine specs, resolved
// request-scoped against the registry (platform.Resolver) without
// registering anything. SERVICE.md documents the endpoints, schemas,
// cache-key recipe and /metrics fields.
//
// Determinism rules are enforced statically: tools/detlint is a
// go/analysis-style multichecker (runnable standalone or via `go vet
// -vettool`) whose four analyzers encode the byte-identity contract —
// maprange (no map-iteration order in output; collect-then-sort is
// recognized), wallclock (no time.Now/os.Getenv in deterministic
// packages; timing layers exempted by detlint.json), seededrand (no
// math/rand or crypto/rand; use internal/xrand with an explicit
// seed), and floatorder (no FP accumulation in map or goroutine
// order, since IEEE-754 addition is not associative). Suppressions
// are `//detlint:allow <analyzer> -- <reason>` directives; reasons
// are mandatory and stale directives are themselves findings. CI
// fails on any unsuppressed diagnostic. tools/detlint/DETLINT.md
// documents the analyzers, directive syntax and package policy.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-
// measured results, and cmd/montblanc for the experiment driver.
package montblanc
