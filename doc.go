// Package montblanc reproduces "Performance Analysis of HPC Applications
// on Low-Power Embedded Platforms" (Stanisic et al., DATE 2013): the
// Mont-Blanc project's characterization of ARM-based platforms against
// x86 servers, from single-node energy ratios through cluster-scale
// congestion pathologies to auto-tuned convolution kernels.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-
// measured results, and cmd/montblanc for the experiment driver.
package montblanc
