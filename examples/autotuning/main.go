// Autotuning: tune the BigDFT magicfilter's unroll degree on two
// architectures with four search strategies (§V.B). The point the paper
// makes: the optima differ per platform and the ARM sweet spot is
// narrow, so tuning must be automated rather than guided by intuition.
package main

import (
	"fmt"
	"log"

	"montblanc/internal/autotune"
	"montblanc/internal/magicfilter"
	"montblanc/internal/platform"
)

const points = 4096

func main() {
	for _, p := range []*platform.Platform{platform.MustLookup("XeonX5550"), platform.MustLookup("Tegra2")} {
		fmt.Printf("=== %s ===\n", p.Name)
		objective := func(cfg autotune.Config) (float64, error) {
			r, err := magicfilter.MeasureVariant(p, points, cfg["unroll"])
			if err != nil {
				return 0, err
			}
			return r.CyclesPerPoint, nil
		}
		space := autotune.Space{Params: []autotune.Param{
			{Name: "unroll", Values: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		}}

		exhaustive, err := autotune.Exhaustive(space, objective)
		if err != nil {
			log.Fatal(err)
		}
		hill, err := autotune.HillClimb(space, objective, 8, 1)
		if err != nil {
			log.Fatal(err)
		}
		random, err := autotune.RandomSearch(space, objective, 6, 1)
		if err != nil {
			log.Fatal(err)
		}
		genetic, err := autotune.Genetic(space, objective, autotune.GeneticOptions{
			Population: 6, Generations: 4, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  exhaustive : unroll=%2d  %6.1f cycles/pt (%d evals)\n",
			exhaustive.Best["unroll"], exhaustive.BestScore, exhaustive.Evaluations)
		fmt.Printf("  hill climb : unroll=%2d  %6.1f cycles/pt (%d evals)\n",
			hill.Best["unroll"], hill.BestScore, hill.Evaluations)
		fmt.Printf("  random     : unroll=%2d  %6.1f cycles/pt (%d evals)\n",
			random.Best["unroll"], random.BestScore, random.Evaluations)
		fmt.Printf("  genetic    : unroll=%2d  %6.1f cycles/pt (%d evals)\n",
			genetic.Best["unroll"], genetic.BestScore, genetic.Evaluations)

		sweep, err := magicfilter.SweepUnroll(p, points, 12)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := magicfilter.SweetSpot(sweep, 0.15)
		fmt.Printf("  sweet spot : [%d:%d]\n\n", lo, hi)
	}
	fmt.Println("Different optima per platform: porting the x86 unroll choice to the")
	fmt.Println("ARM SoC would land outside its narrow sweet spot — tune per platform.")
}
