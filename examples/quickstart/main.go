// Quickstart: compare a low-power ARM board against a server-class Xeon
// on the paper's five workloads and print the Table II verdict — raw
// speed and, crucially, energy-to-solution under the paper's
// conservative power model.
package main

import (
	"fmt"
	"log"

	"montblanc/internal/core"
	"montblanc/internal/platform"
)

func main() {
	snowball := platform.MustLookup("Snowball")
	xeon := platform.MustLookup("XeonX5550")
	fmt.Println("Platforms under test:")
	fmt.Println("  *", snowball)
	fmt.Println("  *", xeon)
	fmt.Println()

	rows, err := core.CompareAll(core.TableIIWorkloads(), snowball, xeon)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %14s %14s %8s %13s\n",
		"Benchmark", "Snowball", "Xeon", "Ratio", "Energy Ratio")
	for _, r := range rows {
		fmt.Printf("%-12s %11.1f %s %11.1f %s %8.1f %13.2f\n",
			r.Workload, r.Candidate, r.Unit, r.Reference, r.Unit, r.Ratio, r.EnergyRatio)
	}

	fmt.Println()
	wins := 0
	for _, r := range rows {
		if r.EnergyRatio < 0.9 {
			wins++
		}
	}
	fmt.Printf("The Xeon is %0.f-%0.f times faster, yet the ARM board needs less\n",
		rows[1].Ratio, rows[0].Ratio)
	fmt.Printf("energy on %d of %d workloads — the Mont-Blanc bet in one table.\n",
		wins, len(rows))
}
