// Scaling: run the three paper applications on a simulated Tibidabo
// cluster, print their strong-scaling curves, and show why BigDFT
// collapses — delayed all_to_all_v collectives on congested Ethernet
// switches (Figures 3 and 4).
package main

import (
	"fmt"
	"log"

	"montblanc/internal/apps/bigdft"
	"montblanc/internal/apps/linpack"
	"montblanc/internal/apps/specfem"
	"montblanc/internal/cluster"
	"montblanc/internal/trace"
)

func main() {
	tibidabo, err := cluster.Tibidabo(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cluster: %s (%d Tegra2 nodes, %d cores, %d GbE switches tier)\n\n",
		tibidabo.Name, tibidabo.Nodes, tibidabo.Cores(), 2)

	fmt.Println("LINPACK (block LU, pipelined panel broadcast):")
	lin, err := linpack.StrongScaling(tibidabo, []int{8, 32, 96},
		linpack.ScalingConfig{N: 8192, NB: 64})
	if err != nil {
		log.Fatal(err)
	}
	printPoints(lin)

	fmt.Println("\nSPECFEM3D (halo exchange only — congestion-immune):")
	spec, err := specfem.StrongScaling(tibidabo, []int{4, 32, 128},
		specfem.ScalingConfig{Steps: 10})
	if err != nil {
		log.Fatal(err)
	}
	printPoints(spec)

	small, err := cluster.Tibidabo(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBigDFT (three alltoallv transposes per iteration):")
	big, err := bigdft.StrongScaling(small, []int{1, 8, 36}, bigdft.ScalingConfig{Iters: 5})
	if err != nil {
		log.Fatal(err)
	}
	printPoints(big)

	// Diagnose the collapse the way the paper did: trace and look at the
	// collectives.
	rep, err := bigdft.TraceDistributed(small, 36, bigdft.ScalingConfig{Iters: 5})
	if err != nil {
		log.Fatal(err)
	}
	cr := trace.AnalyzeCongestion(rep.Trace, "alltoallv")
	fmt.Printf("\nBigDFT at 36 cores: %d of %d alltoallv instances delayed by switch\n",
		cr.Delayed, cr.Instances)
	fmt.Printf("retransmissions (%d fully, %d partially) — the Figure 4 diagnosis.\n",
		cr.FullyDelayed, cr.PartiallyDelayed)
}

func printPoints(points []cluster.SpeedupPoint) {
	for _, p := range points {
		fmt.Printf("  %3d cores: %8.2fs  speedup %6.1f  efficiency %5.1f%%  drops %d\n",
			p.Cores, p.Seconds, p.Speedup, p.Efficiency*100, p.Drops)
	}
}
