// Membench: the §V.A methodology on the simulated Snowball — how
// physical page allocation and the OS scheduler make naive benchmarking
// on ARM platforms misleading, and why randomized, repeated measurement
// is mandatory.
package main

import (
	"fmt"
	"log"

	"montblanc/internal/membench"
	"montblanc/internal/osmodel"
	"montblanc/internal/platform"
	"montblanc/internal/stats"
	"montblanc/internal/units"
)

func main() {
	snowball := platform.MustLookup("Snowball")

	fmt.Println("1) Physical page allocation (§V.A.1)")
	fmt.Println("   32KB array = exactly the L1; 4-way L1 has two page colours.")
	for _, policy := range []osmodel.PagePolicy{osmodel.ContiguousPages, osmodel.RandomPages} {
		var bws []float64
		for seed := uint64(1); seed <= 8; seed++ {
			res, err := membench.Run(snowball, policy.NewMapper(seed),
				membench.Config{ArrayBytes: 32 * units.KiB})
			if err != nil {
				log.Fatal(err)
			}
			bws = append(bws, res.Bandwidth/1e9)
		}
		s := stats.Summarize(bws)
		fmt.Printf("   %-11s pages: %0.2f-%0.2f GB/s across runs (CV %.1f%%)\n",
			policy, s.Min, s.Max, stats.CoeffVar(bws)*100)
	}

	fmt.Println()
	fmt.Println("2) Real-time scheduling (§V.A.2): ten independent runs")
	var sizes []int
	for s := 2 * units.KiB; s <= 50*units.KiB; s += 2 * units.KiB {
		sizes = append(sizes, s)
	}
	unlucky := 0
	var worst stats.Modes
	var worstStreaks stats.Streaks
	for seed := uint64(1); seed <= 10; seed++ {
		env := osmodel.ARMRealTimeEnvironment(seed)
		ms, err := membench.Sweep(snowball, env, sizes, 20)
		if err != nil {
			log.Fatal(err)
		}
		var bws []float64
		var marks []bool
		for _, m := range ms {
			bws = append(bws, m.Bandwidth)
			marks = append(marks, m.Degraded)
		}
		streaks := stats.FindStreaks(marks)
		if streaks.Total == 0 {
			continue
		}
		unlucky++
		if modes := stats.TwoModes(bws); modes.Ratio > worst.Ratio {
			worst, worstStreaks = modes, streaks
		}
	}
	fmt.Printf("   %d of 10 runs hit a degraded scheduler window\n", unlucky)
	fmt.Printf("   worst run: bimodal=%v, mode ratio %.1fx (paper: ~5x),\n",
		worst.Bimodal, worst.Ratio)
	fmt.Printf("   %d degraded measurements in %d consecutive episode(s)\n",
		worstStreaks.Total, worstStreaks.Count)

	fmt.Println()
	fmt.Println("3) The optimization grid (Figure 6) on this ARM board")
	grid, err := membench.OptimizationGrid(snowball, 50*units.KiB, []int{1, 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range grid {
		fmt.Printf("   %5s unroll=%d: %5.2f GB/s\n", g.Width, g.Unroll, g.Bandwidth/1e9)
	}
	fmt.Println("   => 128-bit NEON no better than 32-bit; unrolling it hurts.")
}
